// Portable fixed-width SIMD layer: 4-lane f64/i64 vectors with three
// compile-time backends — AVX2 on x86-64, NEON on aarch64, and a
// loop-based scalar fallback — behind one API, so the hot kernels
// (ziggurat lanes, AR(1) packs, counter window compares) are written
// once against `f64x4`/`i64x4` and compile everywhere.
//
// Backend selection and bit-identity rules:
//
//  * Exactly one of PTRNG_SIMD_AVX2 / PTRNG_SIMD_NEON /
//    PTRNG_SIMD_SCALAR is defined to 1. Configuring with
//    -DPTRNG_SIMD=OFF (which defines PTRNG_SIMD_DISABLED) forces the
//    scalar backend regardless of the host ISA.
//  * On AVX2 the vector helpers carry function-level
//    __attribute__((target("avx2"))) instead of a global -mavx2, so the
//    library binary stays runnable on any x86-64 and — crucially — the
//    surrounding scalar code keeps the baseline ISA: no FMA contraction
//    ever changes scalar results. Kernels must NOT use fused
//    multiply-add either (mul + mul + add only), or SIMD output would
//    diverge from the scalar fallback by one rounding.
//  * Every kernel built on this layer must stay bit-identical to its
//    scalar fallback (docs/ARCHITECTURE.md §5 "SIMD rules"); the
//    runtime switches below exist so tests and bench preambles can
//    prove it in-process.
//
// Runtime dispatch: active() is the one question kernels ask. It is
// true only when (a) a vector backend was compiled in, (b) the CPU
// supports it, (c) the environment does not say PTRNG_SIMD=off, and
// (d) no ScopedForceScalar/force_scalar(true) is in effect.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(PTRNG_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(_M_X64))
#define PTRNG_SIMD_AVX2 1
#include <immintrin.h>
// Per-function ISA targeting: the helpers below (and any kernel calling
// them) compile for AVX2 without changing the translation unit's flags.
#define PTRNG_SIMD_TARGET __attribute__((target("avx2")))
#elif !defined(PTRNG_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__)) && \
    defined(__aarch64__)
#define PTRNG_SIMD_NEON 1
#include <arm_neon.h>
#define PTRNG_SIMD_TARGET
#else
#define PTRNG_SIMD_SCALAR 1
#define PTRNG_SIMD_TARGET
#endif

namespace ptrng::simd {

/// Fixed vector width of the layer; every backend models 4 lanes.
inline constexpr std::size_t kLanes = 4;

/// Name of the backend compiled into this binary: "avx2", "neon" or
/// "scalar". (Out of line: anchors simd.cpp in the build-sanity link.)
[[nodiscard]] const char* compiled_backend() noexcept;

/// True when vector kernels may run: vector backend compiled in, CPU
/// support verified at runtime, environment switch PTRNG_SIMD not
/// "off"/"0"/"scalar"/"false", and no force_scalar(true) in effect.
[[nodiscard]] bool active() noexcept;

/// In-process override used by differential tests and bench preambles:
/// force_scalar(true) makes active() return false until reset.
void force_scalar(bool on) noexcept;
[[nodiscard]] bool scalar_forced() noexcept;

/// RAII guard around force_scalar for SIMD-vs-scalar differential runs.
class ScopedForceScalar {
 public:
  ScopedForceScalar() noexcept : previous_(scalar_forced()) {
    force_scalar(true);
  }
  ~ScopedForceScalar() { force_scalar(previous_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

// ---------------------------------------------------------------------
// AVX2 backend
// ---------------------------------------------------------------------
#if PTRNG_SIMD_AVX2

struct f64x4 {
  __m256d v;
};
struct i64x4 {
  __m256i v;
};

PTRNG_SIMD_TARGET inline f64x4 load4(const double* p) noexcept {
  return {_mm256_loadu_pd(p)};
}
PTRNG_SIMD_TARGET inline void store4(double* p, f64x4 a) noexcept {
  _mm256_storeu_pd(p, a.v);
}
PTRNG_SIMD_TARGET inline f64x4 splat4(double x) noexcept {
  return {_mm256_set1_pd(x)};
}
PTRNG_SIMD_TARGET inline f64x4 operator+(f64x4 a, f64x4 b) noexcept {
  return {_mm256_add_pd(a.v, b.v)};
}
PTRNG_SIMD_TARGET inline f64x4 operator-(f64x4 a, f64x4 b) noexcept {
  return {_mm256_sub_pd(a.v, b.v)};
}
PTRNG_SIMD_TARGET inline f64x4 operator*(f64x4 a, f64x4 b) noexcept {
  return {_mm256_mul_pd(a.v, b.v)};
}
/// 4-bit mask, bit l set iff a[l] < b[l] (ordered, quiet — the scalar
/// `<` on non-NaN data).
PTRNG_SIMD_TARGET inline int lt_mask(f64x4 a, f64x4 b) noexcept {
  return _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ));
}
/// In-place 4x4 transpose: rows (a,b,c,d) become columns.
PTRNG_SIMD_TARGET inline void transpose4(f64x4& a, f64x4& b, f64x4& c,
                                         f64x4& d) noexcept {
  const __m256d t0 = _mm256_unpacklo_pd(a.v, b.v);
  const __m256d t1 = _mm256_unpackhi_pd(a.v, b.v);
  const __m256d t2 = _mm256_unpacklo_pd(c.v, d.v);
  const __m256d t3 = _mm256_unpackhi_pd(c.v, d.v);
  a.v = _mm256_permute2f128_pd(t0, t2, 0x20);
  b.v = _mm256_permute2f128_pd(t1, t3, 0x20);
  c.v = _mm256_permute2f128_pd(t0, t2, 0x31);
  d.v = _mm256_permute2f128_pd(t1, t3, 0x31);
}

PTRNG_SIMD_TARGET inline i64x4 load4(const std::uint64_t* p) noexcept {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
PTRNG_SIMD_TARGET inline void store4(std::uint64_t* p, i64x4 a) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
}
PTRNG_SIMD_TARGET inline i64x4 splat4(std::uint64_t x) noexcept {
  return {_mm256_set1_epi64x(static_cast<long long>(x))};
}
PTRNG_SIMD_TARGET inline i64x4 operator+(i64x4 a, i64x4 b) noexcept {
  return {_mm256_add_epi64(a.v, b.v)};
}
PTRNG_SIMD_TARGET inline i64x4 operator^(i64x4 a, i64x4 b) noexcept {
  return {_mm256_xor_si256(a.v, b.v)};
}
PTRNG_SIMD_TARGET inline i64x4 operator|(i64x4 a, i64x4 b) noexcept {
  return {_mm256_or_si256(a.v, b.v)};
}
PTRNG_SIMD_TARGET inline i64x4 operator&(i64x4 a, i64x4 b) noexcept {
  return {_mm256_and_si256(a.v, b.v)};
}
template <int K>
PTRNG_SIMD_TARGET inline i64x4 shl(i64x4 a) noexcept {
  return {_mm256_slli_epi64(a.v, K)};
}
template <int K>
PTRNG_SIMD_TARGET inline i64x4 shr(i64x4 a) noexcept {
  return {_mm256_srli_epi64(a.v, K)};
}
template <int K>
PTRNG_SIMD_TARGET inline i64x4 rotl(i64x4 a) noexcept {
  return shl<K>(a) | shr<64 - K>(a);
}
/// 4-bit mask, bit l set iff a[l] < b[l] as SIGNED 64-bit — callers
/// must keep values below 2^63 (the ziggurat compares 52-bit numbers).
PTRNG_SIMD_TARGET inline int lt_mask_i64(i64x4 a, i64x4 b) noexcept {
  return _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpgt_epi64(b.v, a.v)));
}
PTRNG_SIMD_TARGET inline f64x4 gather4(const double* base,
                                       i64x4 idx) noexcept {
  return {_mm256_i64gather_pd(base, idx.v, 8)};
}
PTRNG_SIMD_TARGET inline i64x4 gather4(const std::uint64_t* base,
                                       i64x4 idx) noexcept {
  return {_mm256_i64gather_epi64(reinterpret_cast<const long long*>(base),
                                 idx.v, 8)};
}
/// Exact u64 -> f64 for values < 2^52 (the ziggurat magnitude range):
/// OR in the exponent of 2^52 and subtract it — both steps exact, so
/// the result matches the scalar static_cast<double> bit for bit.
PTRNG_SIMD_TARGET inline f64x4 u52_to_f64(i64x4 a) noexcept {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d biased = _mm256_castsi256_pd(_mm256_or_si256(a.v, magic));
  return {_mm256_sub_pd(biased, _mm256_set1_pd(4503599627370496.0))};
}
/// OR raw bits into the doubles (sign injection, as the scalar
/// apply_sign does via bit_cast).
PTRNG_SIMD_TARGET inline f64x4 or_bits(f64x4 x, i64x4 bits) noexcept {
  return {_mm256_or_pd(x.v, _mm256_castsi256_pd(bits.v))};
}

// ---------------------------------------------------------------------
// NEON backend (aarch64): each 4-lane vector is a pair of 128-bit
// halves. All operations are exact integer/IEEE ops, so lane results
// match the scalar fallback bit for bit.
// ---------------------------------------------------------------------
#elif PTRNG_SIMD_NEON

struct f64x4 {
  float64x2_t lo, hi;
};
struct i64x4 {
  uint64x2_t lo, hi;
};

inline f64x4 load4(const double* p) noexcept {
  return {vld1q_f64(p), vld1q_f64(p + 2)};
}
inline void store4(double* p, f64x4 a) noexcept {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}
inline f64x4 splat4(double x) noexcept {
  return {vdupq_n_f64(x), vdupq_n_f64(x)};
}
inline f64x4 operator+(f64x4 a, f64x4 b) noexcept {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline f64x4 operator-(f64x4 a, f64x4 b) noexcept {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline f64x4 operator*(f64x4 a, f64x4 b) noexcept {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline int lt_mask(f64x4 a, f64x4 b) noexcept {
  const uint64x2_t mlo = vcltq_f64(a.lo, b.lo);
  const uint64x2_t mhi = vcltq_f64(a.hi, b.hi);
  return static_cast<int>((vgetq_lane_u64(mlo, 0) >> 63) |
                          ((vgetq_lane_u64(mlo, 1) >> 63) << 1) |
                          ((vgetq_lane_u64(mhi, 0) >> 63) << 2) |
                          ((vgetq_lane_u64(mhi, 1) >> 63) << 3));
}
inline void transpose4(f64x4& a, f64x4& b, f64x4& c, f64x4& d) noexcept {
  const float64x2_t c0l = vzip1q_f64(a.lo, b.lo);
  const float64x2_t c0h = vzip1q_f64(c.lo, d.lo);
  const float64x2_t c1l = vzip2q_f64(a.lo, b.lo);
  const float64x2_t c1h = vzip2q_f64(c.lo, d.lo);
  const float64x2_t c2l = vzip1q_f64(a.hi, b.hi);
  const float64x2_t c2h = vzip1q_f64(c.hi, d.hi);
  const float64x2_t c3l = vzip2q_f64(a.hi, b.hi);
  const float64x2_t c3h = vzip2q_f64(c.hi, d.hi);
  a = {c0l, c0h};
  b = {c1l, c1h};
  c = {c2l, c2h};
  d = {c3l, c3h};
}

inline i64x4 load4(const std::uint64_t* p) noexcept {
  return {vld1q_u64(p), vld1q_u64(p + 2)};
}
inline void store4(std::uint64_t* p, i64x4 a) noexcept {
  vst1q_u64(p, a.lo);
  vst1q_u64(p + 2, a.hi);
}
inline i64x4 splat4(std::uint64_t x) noexcept {
  return {vdupq_n_u64(x), vdupq_n_u64(x)};
}
inline i64x4 operator+(i64x4 a, i64x4 b) noexcept {
  return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
}
inline i64x4 operator^(i64x4 a, i64x4 b) noexcept {
  return {veorq_u64(a.lo, b.lo), veorq_u64(a.hi, b.hi)};
}
inline i64x4 operator|(i64x4 a, i64x4 b) noexcept {
  return {vorrq_u64(a.lo, b.lo), vorrq_u64(a.hi, b.hi)};
}
inline i64x4 operator&(i64x4 a, i64x4 b) noexcept {
  return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
template <int K>
inline i64x4 shl(i64x4 a) noexcept {
  return {vshlq_n_u64(a.lo, K), vshlq_n_u64(a.hi, K)};
}
template <int K>
inline i64x4 shr(i64x4 a) noexcept {
  return {vshrq_n_u64(a.lo, K), vshrq_n_u64(a.hi, K)};
}
template <int K>
inline i64x4 rotl(i64x4 a) noexcept {
  return shl<K>(a) | shr<64 - K>(a);
}
inline int lt_mask_i64(i64x4 a, i64x4 b) noexcept {
  const uint64x2_t mlo = vcltq_s64(vreinterpretq_s64_u64(a.lo),
                                   vreinterpretq_s64_u64(b.lo));
  const uint64x2_t mhi = vcltq_s64(vreinterpretq_s64_u64(a.hi),
                                   vreinterpretq_s64_u64(b.hi));
  return static_cast<int>((vgetq_lane_u64(mlo, 0) >> 63) |
                          ((vgetq_lane_u64(mlo, 1) >> 63) << 1) |
                          ((vgetq_lane_u64(mhi, 0) >> 63) << 2) |
                          ((vgetq_lane_u64(mhi, 1) >> 63) << 3));
}
inline f64x4 gather4(const double* base, i64x4 idx) noexcept {
  return {
      float64x2_t{base[vgetq_lane_u64(idx.lo, 0)],
                  base[vgetq_lane_u64(idx.lo, 1)]},
      float64x2_t{base[vgetq_lane_u64(idx.hi, 0)],
                  base[vgetq_lane_u64(idx.hi, 1)]},
  };
}
inline i64x4 gather4(const std::uint64_t* base, i64x4 idx) noexcept {
  return {
      uint64x2_t{base[vgetq_lane_u64(idx.lo, 0)],
                 base[vgetq_lane_u64(idx.lo, 1)]},
      uint64x2_t{base[vgetq_lane_u64(idx.hi, 0)],
                 base[vgetq_lane_u64(idx.hi, 1)]},
  };
}
inline f64x4 u52_to_f64(i64x4 a) noexcept {
  // vcvtq_f64_s64 is correctly rounded, hence exact below 2^52 — the
  // same value as the scalar static_cast<double>(int64_t).
  return {vcvtq_f64_s64(vreinterpretq_s64_u64(a.lo)),
          vcvtq_f64_s64(vreinterpretq_s64_u64(a.hi))};
}
inline f64x4 or_bits(f64x4 x, i64x4 bits) noexcept {
  return {vreinterpretq_f64_u64(
              vorrq_u64(vreinterpretq_u64_f64(x.lo), bits.lo)),
          vreinterpretq_f64_u64(
              vorrq_u64(vreinterpretq_u64_f64(x.hi), bits.hi))};
}

// ---------------------------------------------------------------------
// Scalar fallback: plain arrays and loops. This is both the portable
// backend and the reference the vector backends are differentially
// tested against (PTRNG_SIMD=off / -DPTRNG_SIMD=OFF build the kernels
// against exactly this code).
// ---------------------------------------------------------------------
#else

struct f64x4 {
  double v[kLanes];
};
struct i64x4 {
  std::uint64_t v[kLanes];
};

inline f64x4 load4(const double* p) noexcept {
  return {{p[0], p[1], p[2], p[3]}};
}
inline void store4(double* p, f64x4 a) noexcept {
  for (std::size_t l = 0; l < kLanes; ++l) p[l] = a.v[l];
}
inline f64x4 splat4(double x) noexcept { return {{x, x, x, x}}; }
inline f64x4 operator+(f64x4 a, f64x4 b) noexcept {
  f64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline f64x4 operator-(f64x4 a, f64x4 b) noexcept {
  f64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline f64x4 operator*(f64x4 a, f64x4 b) noexcept {
  f64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline int lt_mask(f64x4 a, f64x4 b) noexcept {
  int m = 0;
  for (std::size_t l = 0; l < kLanes; ++l)
    if (a.v[l] < b.v[l]) m |= 1 << l;
  return m;
}
inline void transpose4(f64x4& a, f64x4& b, f64x4& c, f64x4& d) noexcept {
  f64x4* rows[kLanes] = {&a, &b, &c, &d};
  for (std::size_t i = 0; i < kLanes; ++i)
    for (std::size_t j = i + 1; j < kLanes; ++j) {
      const double t = rows[i]->v[j];
      rows[i]->v[j] = rows[j]->v[i];
      rows[j]->v[i] = t;
    }
}

inline i64x4 load4(const std::uint64_t* p) noexcept {
  return {{p[0], p[1], p[2], p[3]}};
}
inline void store4(std::uint64_t* p, i64x4 a) noexcept {
  for (std::size_t l = 0; l < kLanes; ++l) p[l] = a.v[l];
}
inline i64x4 splat4(std::uint64_t x) noexcept { return {{x, x, x, x}}; }
inline i64x4 operator+(i64x4 a, i64x4 b) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline i64x4 operator^(i64x4 a, i64x4 b) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] ^ b.v[l];
  return r;
}
inline i64x4 operator|(i64x4 a, i64x4 b) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] | b.v[l];
  return r;
}
inline i64x4 operator&(i64x4 a, i64x4 b) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] & b.v[l];
  return r;
}
template <int K>
inline i64x4 shl(i64x4 a) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] << K;
  return r;
}
template <int K>
inline i64x4 shr(i64x4 a) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] >> K;
  return r;
}
template <int K>
inline i64x4 rotl(i64x4 a) noexcept {
  return shl<K>(a) | shr<64 - K>(a);
}
inline int lt_mask_i64(i64x4 a, i64x4 b) noexcept {
  int m = 0;
  for (std::size_t l = 0; l < kLanes; ++l)
    if (static_cast<std::int64_t>(a.v[l]) < static_cast<std::int64_t>(b.v[l]))
      m |= 1 << l;
  return m;
}
inline f64x4 gather4(const double* base, i64x4 idx) noexcept {
  f64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = base[idx.v[l]];
  return r;
}
inline i64x4 gather4(const std::uint64_t* base, i64x4 idx) noexcept {
  i64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = base[idx.v[l]];
  return r;
}
inline f64x4 u52_to_f64(i64x4 a) noexcept {
  f64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l)
    r.v[l] = static_cast<double>(static_cast<std::int64_t>(a.v[l]));
  return r;
}
inline f64x4 or_bits(f64x4 x, i64x4 bits) noexcept {
  f64x4 r;
  for (std::size_t l = 0; l < kLanes; ++l) {
    std::uint64_t u;
    __builtin_memcpy(&u, &x.v[l], sizeof u);
    u |= bits.v[l];
    __builtin_memcpy(&r.v[l], &u, sizeof u);
  }
  return r;
}

#endif

}  // namespace ptrng::simd
