// Deterministic pseudo-random number generation for simulations.
//
// The library deliberately does not use std::mt19937/std::normal_distribution
// because their outputs are not guaranteed to be identical across standard
// library implementations; reproducibility of every bench/example table (docs/ARCHITECTURE.md §3)
// depends on a fully specified generator.
//
//  * SplitMix64   — seed expansion (Steele, Lea, Flood 2014)
//  * Xoshiro256pp — main uniform generator (Blackman & Vigna 2019)
//  * GaussianSampler — normal sampler on top of Xoshiro256pp, with a
//    method policy: the 256-layer ziggurat (common/ziggurat.hpp, the
//    default engine) or the Marsaglia polar method (the pre-PR-5 engine,
//    kept selectable so the old realized streams stay reproducible —
//    see docs/ARCHITECTURE.md §5 "Sampler policy")
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace ptrng {

/// SplitMix64: a tiny 64-bit generator used to expand a single seed into the
/// state of larger generators. Passes BigCrush when used standalone.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0: fast, high-quality 64-bit generator with 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Xoshiro256pp(std::uint64_t seed = 0x8badf00ddeadbeefULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as log() argument.
  double uniform_pos() noexcept {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Jump function: advances the state by 2^128 steps, giving independent
  /// parallel subsequences.
  void jump() noexcept;

  /// Raw 256-bit state, for lane-parallel (struct-of-arrays) stepping in
  /// the SIMD kernels and for state spill/reload around their scalar
  /// slow paths. A state restored via set_state continues the exact
  /// word sequence; an all-zero state is invalid (the generator would
  /// stick at zero) and must never be installed.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Standard-normal sampler (mean 0, variance 1) with a selectable
/// engine. Method::Ziggurat (default) is the 256-layer table-driven
/// sampler; Method::Polar is the Marsaglia polar method (caching the
/// second variate of each pair) that every stream used before PR 5.
/// The two methods realize different streams from the same seed; code
/// that pins seeded expectations must say which method it pinned.
class GaussianSampler {
 public:
  enum class Method : std::uint8_t {
    Ziggurat,  ///< 256-layer ziggurat (common/ziggurat.hpp) — default
    Polar,     ///< Marsaglia polar — the pre-PR-5 streams, bit-for-bit
  };

  explicit GaussianSampler(std::uint64_t seed = 0x5eedcafef00dULL,
                           Method method = Method::Ziggurat) noexcept
      : rng_(seed), method_(method) {}
  explicit GaussianSampler(Xoshiro256pp rng,
                           Method method = Method::Ziggurat) noexcept
      : rng_(rng), method_(method) {}

  /// One N(0,1) sample.
  double operator()() noexcept;

  /// Batched draws, bit-identical to out.size() operator()() calls on
  /// the same stream: the ziggurat inlines its scalar path across the
  /// block; polar emits pairs straight into the buffer (rejection loop
  /// and log/sqrt pipeline across the block instead of paying a call
  /// per variate).
  void fill(std::span<double> out) noexcept;

  /// Multi-stream batched draws for the SIMD lane kernels: four
  /// samplers advance in lockstep and their draws land interleaved,
  /// out[i*4 + l] = the i-th draw of lanes[l] (out.size() must be a
  /// multiple of 4). Each lane's subsequence is bit-identical to the
  /// same number of operator()() calls on that sampler alone — lanes
  /// own independent streams, so batching across them never reorders
  /// any single stream. All four lanes must share one Method; the
  /// ziggurat rides the vectorized common/simd kernel when
  /// simd::active(), Polar always takes the scalar path (its rejection
  /// loop has data-dependent stream consumption per lane).
  static void fill_lanes(const std::array<GaussianSampler*, 4>& lanes,
                         std::span<double> out) noexcept;

  /// One N(mean, stddev^2) sample.
  double operator()(double mean, double stddev) noexcept {
    return mean + stddev * (*this)();
  }

  /// Access to the underlying uniform generator (e.g. for mixing streams).
  Xoshiro256pp& uniform_rng() noexcept { return rng_; }

  /// The engine this sampler draws with.
  [[nodiscard]] Method method() const noexcept { return method_; }

 private:
  double polar_next() noexcept;
  void polar_fill(std::span<double> out) noexcept;

  Xoshiro256pp rng_;
  double cached_ = 0.0;
  bool has_cached_ = false;
  Method method_;
};

}  // namespace ptrng
