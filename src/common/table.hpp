// Console table / CSV emission for the benchmark harness.
//
// Every bench binary regenerates a table or figure series from the paper;
// TableWriter renders the rows in an aligned, human-readable form and can
// also dump CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ptrng {

/// Accumulates rows of heterogeneous printable cells and renders them
/// aligned. Cells are stored as strings; use the cell() helpers for numbers.
class TableWriter {
 public:
  /// A table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule, padding each column.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-notation cell with the given number of decimals.
[[nodiscard]] std::string cell(double v, int precision = 6);
/// Scientific-notation cell.
[[nodiscard]] std::string cell_sci(double v, int precision = 4);
/// Integer cell.
[[nodiscard]] std::string cell(long long v);
[[nodiscard]] std::string cell(std::size_t v);

}  // namespace ptrng
