// Parallel execution core: a small fixed-size thread pool with
// parallel_for / parallel_reduce primitives used by the leaf algorithms
// (sigma^2_N sweeps, Kasdin block convolution, ...).
//
// Design rules (docs/ARCHITECTURE.md §5):
//  * Determinism first. Work is split into chunks whose boundaries depend
//    only on (range, grain) — never on the number of threads — and
//    reductions combine per-chunk results in chunk order. A computation
//    built on these primitives is bit-identical for PTRNG_THREADS=1 and
//    PTRNG_THREADS=64.
//  * No nesting IN DETERMINISTIC MODE. A task that itself calls
//    parallel_for runs its inner loop serially on the calling worker;
//    only leaf algorithms may fan out, so the deterministic path stays
//    queue-simple.
//  * The calling thread participates: a pool of size 1 executes
//    everything inline with zero synchronization overhead.
//
// Work-stealing mode (parallel_for_ws, PR 10): the campaign layer runs
// thousands of wildly uneven shards (attacked corners drive health
// engines to alarm; healthy corners do not), where the deterministic
// mode's rules cost real wall-clock — a submitter blocked on its own
// job cannot help anyone else, and a nested fan-out degrades to a
// serial loop. parallel_for_ws instead registers its chunk set in a
// pool-wide live-job list: every worker AND every blocked submitter
// executes chunks from ANY live job (chunks submitted by another thread
// are "stolen" — steal_count() observes this for tests), and a ws task
// that calls parallel_for_ws again registers a child job whose chunks
// the whole pool helps drain (nested fanout). Chunk boundaries still
// depend only on (range, grain), so a body writing to per-index slots
// produces bit-identical RESULTS at any width — only the execution
// order is dynamic. Callers that need an order-sensitive reduction must
// fold per-chunk results in index order themselves (the campaign
// layer's ordered folder does exactly that).
//
// Thread count resolution: PTRNG_THREADS environment variable if set to
// a positive integer, else std::thread::hardware_concurrency(). The
// global pool reads it once at first use; ThreadPool::resize() (benches,
// tests) overrides it afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ptrng {

/// Thread count the global pool starts with: PTRNG_THREADS if set to a
/// positive integer, else hardware concurrency (>= 1). Re-reads the
/// environment on every call.
[[nodiscard]] std::size_t configured_thread_count();

/// Derives a decorrelated per-chunk seed from a base seed, so algorithms
/// that draw randomness per chunk stay independent of the thread count
/// (SplitMix64 mix of base and chunk index).
[[nodiscard]] std::uint64_t chunk_seed(std::uint64_t base,
                                       std::uint64_t chunk) noexcept;

/// The auto-grain rule (grain == 0) shared by parallel_for and
/// parallel_reduce: ~64 chunks, computed from the range ALONE — never
/// the thread count — so chunk boundaries, chunk_seed streams, and fold
/// order are identical for any pool width.
[[nodiscard]] constexpr std::size_t auto_grain(std::size_t range) noexcept {
  const std::size_t grain = (range + 63) / 64;
  return grain ? grain : 1;
}

/// Fixed-size worker pool. The calling thread always participates in a
/// parallel_for, so `threads == 1` means "no worker threads, run inline".
class ThreadPool {
 public:
  /// threads == 0 resolves via configured_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (worker threads + the calling thread).
  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Joins all workers and respawns with the new width (0 = reconfigure
  /// from the environment). Must not be called from inside a pool task.
  void resize(std::size_t threads);

  /// Splits [begin, end) into chunks of `grain` indices (last chunk may
  /// be short) and invokes body(chunk_begin, chunk_end) for each, across
  /// the pool. grain == 0 picks a grain that yields ~64 chunks — a
  /// function of the range alone, so chunk boundaries (and anything
  /// derived from them, like chunk_seed streams) never depend on the
  /// thread count. Blocks until every chunk finished; rethrows the
  /// first exception a chunk threw. Calls from inside a pool task run
  /// the whole range inline (no nesting).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Work-stealing mode: same chunking rule as parallel_for (boundaries
  /// from (range, grain) alone), but chunks go into the pool-wide
  /// live-job list where any worker or blocked submitter may execute
  /// them, and nested calls from inside a ws task fan out as child jobs
  /// instead of running inline. Blocks until every chunk of THIS job
  /// finished (helping other live jobs while it waits); rethrows the
  /// first exception a chunk threw. Execution order is nondeterministic;
  /// results are not, provided the body writes only to per-index state.
  /// Calls from inside a DETERMINISTIC pool task still run inline (the
  /// deterministic mode's no-nesting contract stays intact).
  void parallel_for_ws(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Chunks executed by a thread other than their job's submitter since
  /// construction (or the last reset_steal_count()). Monotonic,
  /// approximate only in its timing — each steal is counted exactly
  /// once. Exposed so tests can assert stealing actually happens on
  /// skewed workloads.
  [[nodiscard]] std::uint64_t steal_count() const noexcept;
  void reset_steal_count() noexcept;

  /// The process-wide pool every leaf algorithm shares. Created on first
  /// use with configured_thread_count() threads.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

/// parallel_for on the global pool.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

/// parallel_for_ws on the global pool.
inline void parallel_for_ws(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for_ws(begin, end, grain, body);
}

/// Deterministic map-reduce on `pool`: map(chunk_begin, chunk_end) -> T
/// per chunk, then combine(acc, chunk_result) folds the per-chunk values
/// **in chunk order**, so the result is independent of the thread count.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t begin,
                                std::size_t end, std::size_t grain, T init,
                                Map&& map, Combine&& combine) {
  if (begin >= end) return init;
  if (grain == 0) grain = auto_grain(end - begin);
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(chunks, init);
  pool.parallel_for(begin, end, grain,
                    [&](std::size_t b, std::size_t e) {
                      partial[(b - begin) / grain] = map(b, e);
                    });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// parallel_reduce on the global pool.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                std::size_t grain, T init, Map&& map,
                                Combine&& combine) {
  return parallel_reduce(ThreadPool::global(), begin, end, grain,
                         std::move(init), std::forward<Map>(map),
                         std::forward<Combine>(combine));
}

}  // namespace ptrng
