// SHA-256 (FIPS 180-4): the hash primitive under the conditioning layer
// (trng/conditioning.hpp — hash_df and Hash-DRBG, SP 800-90A). In-house
// for the same reason the RNGs are (docs/ARCHITECTURE.md §3): no
// dependency may decide the bytes a pinned table or KAT reproduces.
//
// Incremental (init/update/final) plus a one-shot convenience. The
// incremental form exists because hash_df and the DRBG derivation
// functions hash concatenations (counter || length || material) that are
// cheaper to stream than to splice into a scratch buffer.
//
// Verified in tests/test_conditioning.cpp against the FIPS 180-4
// example vectors ("abc", the 448-bit two-block message, 1M 'a's),
// including update() split at every boundary of the first vector.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ptrng {

/// Streaming SHA-256 context. Default-constructed ready to absorb;
/// reusable after reset().
class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;
  static constexpr std::size_t kBlockBytes = 64;

  using Digest = std::array<std::byte, kDigestBytes>;

  Sha256() noexcept { reset(); }

  /// Re-initializes to the FIPS H(0) state (empty message).
  void reset() noexcept;

  /// Absorbs `data`; any number of calls, any split points.
  void update(std::span<const std::byte> data) noexcept;

  /// Pads, finalizes and returns the digest. The context is left
  /// finalized — call reset() before reuse.
  [[nodiscard]] Digest finalize() noexcept;

  /// One-shot digest of a contiguous message.
  [[nodiscard]] static Digest digest(std::span<const std::byte> data) noexcept;

 private:
  void compress(const std::byte* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::byte, kBlockBytes> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// Lower-case hex of an arbitrary byte string (KAT pins, reports).
[[nodiscard]] std::string to_hex(std::span<const std::byte> bytes);

/// Parses lower/upper-case hex (even length) into bytes; throws
/// std::invalid_argument on malformed input. Inverse of to_hex.
[[nodiscard]] std::vector<std::byte> from_hex(std::string_view hex);

}  // namespace ptrng
