// Lock-free bounded single-producer / multi-consumer ring — the
// distribution structure of trng::RandomByteService (one conditioning
// producer, N consumer streams pulling reseed blocks). The first
// genuinely lock-free structure in the repo, so the rules are stated
// here and the TSan CI job runs the suites that exercise it.
//
// Design: a power-of-two slot array with per-slot sequence numbers
// (Vyukov's bounded-queue protocol, restricted to one producer).
//  * The producer writes the slot payload, then publishes by storing
//    sequence = pos + 1 with release ordering.
//  * Consumers claim a slot by CAS on the shared head; the winning
//    consumer reads the payload, then releases the slot back to the
//    producer (sequence = pos + capacity) so the ring can wrap.
//  * No operation waits inside the ring: try_push/try_pop return false
//    on full/empty and the caller decides the waiting strategy
//    (Backoff below — spin, then yield, then sleep).
//
// Determinism note (docs/ARCHITECTURE.md §5): WHICH consumer obtains
// WHICH block is scheduling-dependent by construction. Anything that
// must stay bit-identical across thread counts (per-consumer DRBG
// output streams) therefore must not derive from pop order; the RBG
// service derives per-consumer streams from consumer ids instead and
// uses ring blocks only as reseed material.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace ptrng {

/// Spin-then-yield-then-sleep waiting strategy for the lock-free
/// structures: cheap under momentary contention, polite when the other
/// side is descheduled or genuinely idle.
class Backoff {
 public:
  /// One wait step; escalates: ~16 pause spins -> thread yields ->
  /// 50 us sleeps.
  void pause() noexcept {
    if (spins_ < kSpinLimit) {
      ++spins_;
      for (std::uint32_t i = 0; i < (1u << std::min<std::uint32_t>(spins_, 6));
           ++i)
        cpu_relax();
      return;
    }
    if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  void reset() noexcept { spins_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 16;
  static constexpr std::uint32_t kYieldLimit = 8;

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::uint32_t spins_ = 0;
};

/// Bounded lock-free SPMC ring of T. Exactly ONE thread may call
/// try_push; any number may call try_pop concurrently. Each pushed item
/// is delivered to exactly one consumer. T must be movable; payload
/// moves happen outside the atomic protocol, so T may be heavy (the RBG
/// service ships 32-byte conditioned blocks plus accounting).
template <typename T>
class SpmcRing {
 public:
  /// Capacity is rounded UP to a power of two (>= 2).
  explicit SpmcRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(std::max<std::size_t>(min_capacity, 2)) - 1),
        slots_(mask_ + 1) {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  SpmcRing(const SpmcRing&) = delete;
  SpmcRing& operator=(const SpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. False when the ring is full.
  bool try_push(T&& value) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[tail & mask_];
    // The slot is free for writing pos `tail` once its sequence came
    // back around to exactly tail (initial lap or released by a
    // consumer a full lap ago).
    if (slot.sequence.load(std::memory_order_acquire) != tail) return false;
    slot.value = std::move(value);
    slot.sequence.store(tail + 1, std::memory_order_release);
    tail_.store(tail + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer side. False when the ring is empty (or the item was lost
  /// to a concurrent consumer — callers loop with a Backoff).
  bool try_pop(T& out) noexcept {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      if (seq == pos + 1) {
        // Published and unclaimed: try to take ownership of this pos.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
          out = std::move(slot.value);
          // Release the slot to the producer for the next lap.
          slot.sequence.store(pos + capacity(), std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry against the new head.
        continue;
      }
      if (seq == pos) return false;  // not yet published: empty
      // seq > pos + 1: another consumer won this slot; advance.
      pos = head_.load(std::memory_order_relaxed);
    }
  }

  /// Items published and not yet claimed (approximate under concurrency;
  /// exact when quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(tail >= head ? tail - head : 0);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  const std::uint64_t mask_;
  std::vector<Slot> slots_;
  /// Producer-owned (single writer); atomic only so size_approx() may
  /// read it from other threads without a data race.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

}  // namespace ptrng
