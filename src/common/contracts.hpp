// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations throw ptrng::ContractViolation so tests can assert on them and
// library users get a diagnosable error instead of undefined behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace ptrng {

/// Thrown when a precondition (Expects) or postcondition (Ensures) fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + cond + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ptrng

/// Precondition check: argument/state requirements at function entry.
#define PTRNG_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ptrng::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__);                              \
  } while (false)

/// Postcondition check: result guarantees at function exit.
#define PTRNG_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ptrng::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                     __LINE__);                              \
  } while (false)
