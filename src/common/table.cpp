#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace ptrng {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PTRNG_EXPECTS(!headers_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  PTRNG_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TableWriter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string cell(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string cell_sci(double v, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

std::string cell(long long v) { return std::to_string(v); }
std::string cell(std::size_t v) { return std::to_string(v); }

}  // namespace ptrng
