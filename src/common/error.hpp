// Exception hierarchy for the ptrng library.
#pragma once

#include <stdexcept>
#include <string>

namespace ptrng {

/// Base class for all ptrng runtime errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A numeric routine failed to converge or produced a non-finite value.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// Input data is structurally unusable (too short, wrong shape, ...).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

}  // namespace ptrng
