// 256-layer Marsaglia–Tsang ziggurat sampler for the standard normal.
//
// The table-driven rejection scheme replaces the Marsaglia polar loop's
// per-draw log/sqrt with one 64-bit draw, one table lookup, and one
// multiply on ~98.5% of draws: the low 8 bits pick a layer, bit 8 the
// sign, and the top 52 bits the magnitude. The remaining draws split
// between the wedge test (one exp) and the exact Marsaglia tail beyond
// r = 3.6541...; the realized distribution is exact, not approximate.
//
// The layer tables (per-layer integer accept bounds, width scales, and
// density ordinates) are generated at COMPILE TIME from the published
// (r, V) constants via consteval exp/log/sqrt — no static initializers,
// no run-to-run or platform drift in the tables themselves.
//
// Like the rest of common/rng.hpp, the sampler consumes raw
// Xoshiro256pp output, so streams are fully specified by the seed
// (docs/ARCHITECTURE.md §3). GaussianSampler wraps this class behind
// GaussianSampler::Method::Ziggurat (the default engine since PR 5).
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"

namespace ptrng {

/// Standard-normal sampler (mean 0, variance 1) using the 256-layer
/// ziggurat; ~2-3x faster than the Marsaglia polar method.
class ZigguratNormal {
 public:
  explicit ZigguratNormal(std::uint64_t seed = 0x5eedcafef00dULL) noexcept
      : rng_(seed) {}
  explicit ZigguratNormal(Xoshiro256pp rng) noexcept : rng_(rng) {}

  /// One N(0,1) sample.
  double operator()() noexcept { return draw(rng_); }

  /// Batched draws, bit-identical to out.size() operator()() calls on
  /// the same stream (the ziggurat keeps no cross-draw state, so the
  /// batch is just the scalar path inlined across the block).
  void fill(std::span<double> out) noexcept { fill(rng_, out); }

  /// One variate from an external uniform stream — the building block
  /// GaussianSampler dispatches to.
  static double draw(Xoshiro256pp& rng) noexcept;

  /// Batched draws from an external uniform stream, bit-identical to
  /// out.size() draw() calls.
  static void fill(Xoshiro256pp& rng, std::span<double> out) noexcept;

  /// Four-stream lane-parallel draws: out[i*4 + l] = the i-th draw
  /// from *rngs[l], with each lane bit-identical to n draw() calls on
  /// that stream alone. When simd::active(), the four xoshiro states
  /// step struct-of-arrays through the vectorized fast path (one
  /// gather + compare per 4 draws, ~98.5% all-lane accept); lanes that
  /// miss the fast accept spill their state and finish the draw through
  /// the exact scalar wedge/tail code, so acceptance logic and stream
  /// consumption per lane never diverge from the scalar sampler.
  static void fill_lanes4(const std::array<Xoshiro256pp*, 4>& rngs,
                          std::size_t n, double* out) noexcept;

  /// Access to the underlying uniform generator (e.g. for mixing streams).
  Xoshiro256pp& uniform_rng() noexcept { return rng_; }

 private:
  Xoshiro256pp rng_;
};

}  // namespace ptrng
