#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ptrng::simd {

namespace {

/// In-process differential-test override (ScopedForceScalar).
std::atomic<bool> g_force_scalar{false};

/// PTRNG_SIMD=off|0|scalar|false|no disables vector kernels for the
/// whole process — the env twin of the -DPTRNG_SIMD=OFF build switch,
/// cheap enough to flip per CI job without a rebuild.
bool env_disables_simd() noexcept {
  const char* value = std::getenv("PTRNG_SIMD");
  if (value == nullptr || *value == '\0') return false;
  for (const char* off : {"off", "OFF", "Off", "0", "scalar", "false", "no"})
    if (std::strcmp(value, off) == 0) return true;
  return false;
}

bool runtime_supported() noexcept {
#if PTRNG_SIMD_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#elif PTRNG_SIMD_NEON
  return true;  // NEON is baseline on aarch64
#else
  return false;
#endif
}

}  // namespace

const char* compiled_backend() noexcept {
#if PTRNG_SIMD_AVX2
  return "avx2";
#elif PTRNG_SIMD_NEON
  return "neon";
#else
  return "scalar";
#endif
}

bool active() noexcept {
  static const bool enabled = runtime_supported() && !env_disables_simd();
  return enabled && !g_force_scalar.load(std::memory_order_relaxed);
}

void force_scalar(bool on) noexcept {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

bool scalar_forced() noexcept {
  return g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace ptrng::simd
