// Small numeric helpers shared by all modules: physical constants,
// compensated summation, grid generation and approximate comparison.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace ptrng {

/// Mathematical and physical constants used throughout the library.
namespace constants {
inline constexpr double pi = 3.14159265358979323846;
inline constexpr double two_pi = 2.0 * pi;
inline constexpr double ln2 = 0.69314718055994530942;
/// Boltzmann constant [J/K].
inline constexpr double k_boltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double q_electron = 1.602176634e-19;
/// Reference temperature for noise budgets [K].
inline constexpr double t_room = 300.0;
}  // namespace constants

/// Kahan–Neumaier compensated accumulator: sums long series of small
/// variances without catastrophic cancellation.
class KahanSum {
 public:
  /// Adds one term.
  void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  /// Current compensated total.
  [[nodiscard]] double value() const noexcept { return sum_ + comp_; }

  void reset() noexcept { sum_ = comp_ = 0.0; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Compensated sum of a range.
[[nodiscard]] double kahan_sum(std::span<const double> xs) noexcept;

/// n points linearly spaced over [lo, hi] inclusive; n >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n points logarithmically spaced over [lo, hi] inclusive; requires
/// 0 < lo < hi and n >= 2.
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Log-spaced *integer* grid over [lo, hi] with duplicates removed —
/// the N-axis of every sigma^2_N sweep in the benches.
[[nodiscard]] std::vector<std::size_t> log_integer_grid(std::size_t lo,
                                                        std::size_t hi,
                                                        std::size_t n);

/// True when |a-b| <= atol + rtol*max(|a|,|b|). Mirrors numpy.isclose.
[[nodiscard]] bool is_close(double a, double b, double rtol = 1e-9,
                            double atol = 0.0) noexcept;

/// x*x, for readability in variance formulas.
[[nodiscard]] constexpr double square(double x) noexcept { return x * x; }

/// Next power of two >= n (n == 0 maps to 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// Floor of log2(n); requires n >= 1.
[[nodiscard]] unsigned floor_log2(std::size_t n) noexcept;

}  // namespace ptrng
