#include "oscillator/ring_oscillator.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ptrng::oscillator {

RingOscillator::RingOscillator(const RingOscillatorConfig& config)
    : config_(config),
      gauss_(config.seed, noise::resolved_sampler(config).gauss_method) {
  PTRNG_EXPECTS(config.f0 > 0.0);
  PTRNG_EXPECTS(config.b_th >= 0.0);
  PTRNG_EXPECTS(config.b_fl >= 0.0);
  PTRNG_EXPECTS(std::abs(config.mismatch) < 0.5);
  PTRNG_EXPECTS(config.flicker_floor_ratio > 0.0 &&
                config.flicker_floor_ratio < 0.25);

  const double f_actual = config.f0 * (1.0 + config.mismatch);
  t_nom_ = 1.0 / f_actual;
  // Var(J_th) = b_th / f0^3 (docs/ARCHITECTURE.md §3).
  sigma_th_ = std::sqrt(config.b_th / (config.f0 * config.f0 * config.f0));

  if (config.b_fl > 0.0) {
    // Two-sided per-period flicker-jitter PSD: (b_fl/f0^4)/f.
    flicker_.emplace(noise::flicker_band_config(
        config.b_fl / (config.f0 * config.f0 * config.f0 * config.f0),
        config.f0, config.f0 * config.flicker_floor_ratio,
        config.seed ^ 0xf11c4e5eedULL, config.flicker_stages_per_decade,
        noise::resolved_sampler(config)));
  }
}

PeriodSample RingOscillator::next_period() {
  PeriodSample s;
  s.thermal = sigma_th_ * gauss_();
  s.flicker = flicker_ ? flicker_->next() : 0.0;
  double t = t_nom_ + s.thermal + s.flicker;
  if (modulation_) {
    // df/f = m  =>  dT/T = -m to first order.
    const double m = modulation_(edge_time_.value());
    t *= (1.0 - m);
  }
  s.period = t;
  edge_time_.add(t);
  ++cycles_;
  return s;
}

void RingOscillator::next_periods(std::span<PeriodSample> out) {
  if (out.empty()) return;
  if (modulation_) {
    // The hook must see every edge time; no batch shortcut exists.
    for (auto& s : out) s = next_period();
    return;
  }
  // Thermal and flicker ride independent streams, so drawing all thermal
  // samples first and then one flicker block consumes each stream in the
  // exact order next_period() would.
  thermal_scratch_.resize(out.size());
  gauss_.fill(thermal_scratch_);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i].thermal = sigma_th_ * thermal_scratch_[i];
  if (flicker_) {
    flicker_scratch_.resize(out.size());
    flicker_->fill(flicker_scratch_);
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i].flicker = flicker_scratch_[i];
  } else {
    for (auto& s : out) s.flicker = 0.0;
  }
  for (auto& s : out) {
    s.period = t_nom_ + s.thermal + s.flicker;
    edge_time_.add(s.period);
  }
  cycles_ += out.size();
}

void RingOscillator::next_edges(std::span<double> out) {
  if (out.empty()) return;
  if (modulation_) {
    // The hook must see every edge time; no batch shortcut exists.
    for (auto& t : out) {
      next_period();
      t = edge_time_.value();
    }
    return;
  }
  thermal_scratch_.resize(out.size());
  gauss_.fill(thermal_scratch_);
  if (flicker_) {
    flicker_scratch_.resize(out.size());
    flicker_->fill(flicker_scratch_);
  }
  // Same per-period arithmetic and Kahan accumulation as next_period:
  // t_nom + thermal + flicker in that order, one compensated add per
  // edge, reading the running value after each.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double th = sigma_th_ * thermal_scratch_[i];
    const double fl = flicker_ ? flicker_scratch_[i] : 0.0;
    edge_time_.add(t_nom_ + th + fl);
    out[i] = edge_time_.value();
  }
  cycles_ += out.size();
}

void RingOscillator::advance_periods(std::uint64_t k) {
  if (k == 0) return;
  if (k < 8) {
    for (std::uint64_t i = 0; i < k; ++i) next_period();
    return;
  }
  if (modulation_) {
    // The hook must sample the (smooth, deterministic) modulation densely
    // enough; 64-period chunks keep the midpoint-rule error negligible
    // for beats far below f0/64 while staying ~64x faster than stepping.
    std::uint64_t left = k;
    while (left > 0) {
      const std::uint64_t chunk = std::min<std::uint64_t>(left, 64);
      if (chunk < 8) {
        for (std::uint64_t i = 0; i < chunk; ++i) next_period();
        left -= chunk;
        continue;
      }
      const double cd = static_cast<double>(chunk);
      double elapsed = cd * t_nom_ + sigma_th_ * std::sqrt(cd) * gauss_();
      if (flicker_) elapsed += flicker_->advance_sum(chunk);
      const double t_mid =
          edge_time_.value() + 0.5 * cd * t_nom_;
      elapsed *= (1.0 - modulation_(t_mid));
      edge_time_.add(elapsed);
      cycles_ += chunk;
      left -= chunk;
    }
    return;
  }
  const double kd = static_cast<double>(k);
  double elapsed = kd * t_nom_ + sigma_th_ * std::sqrt(kd) * gauss_();
  if (flicker_) elapsed += flicker_->advance_sum(k);
  edge_time_.add(elapsed);
  cycles_ += k;
}

EdgeBracket RingOscillator::advance_to_block(double t_target,
                                             EdgeBracket bracket) {
  for (;;) {
    const double gap = t_target - bracket.next;
    const auto skip =
        static_cast<std::uint64_t>(std::max(0.0, 0.9 * gap / t_nom_));
    if (skip < 16) break;
    advance_periods(skip);
    bracket.next = edge_time();
  }
  while (bracket.next <= t_target) {
    bracket.prev = bracket.next;
    next_period();
    bracket.next = edge_time();
  }
  return bracket;
}

void RingOscillator::set_modulation(std::function<double(double)> modulation) {
  modulation_ = std::move(modulation);
}

}  // namespace ptrng::oscillator
