// Structural (gate-level) ring-oscillator model: N inverter stages, each
// contributing an independently noisy propagation delay per transition.
// One oscillation period = 2N stage delays (a rising edge must traverse
// the ring twice). This is the "one level down" view of the phase-domain
// simulator: it validates the aggregation rules (per-stage thermal
// variances add; per-stage flicker adds in PSD) and feeds the ISF ablation
// bench.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "noise/filter_bank.hpp"
#include "oscillator/ring_oscillator.hpp"

namespace ptrng::oscillator {

/// Per-stage delay model configuration.
/// (Suppression covers the struct definition only — implicit-ctor NSDMI
/// use of the deprecated alias; callsite writes still warn.)
PTRNG_SUPPRESS_DEPRECATED_BEGIN
struct GateChainConfig {
  std::size_t n_stages = 5;     ///< inverters in the ring (odd, >= 3)
  double stage_delay = 970e-12 / 10.0;  ///< nominal per-stage delay [s]
  double sigma_stage = 5e-12;   ///< thermal stddev per stage transition [s]
  /// Two-sided flicker amplitude of the per-stage delay sequence
  /// (PSD = amplitude/f against the stage-transition rate); 0 disables.
  double flicker_amplitude = 0.0;
  double flicker_floor_hz = 100.0;
  std::uint64_t seed = 0x9a7ec4a1ULL;
  /// Sampler policy for the shared thermal stream and every stage's
  /// flicker bank (docs/ARCHITECTURE.md §5 "Sampler policy").
  noise::SamplerPolicy sampler{};
  /// Pre-PR-7 alias of sampler.gauss_method; wins over `sampler` when
  /// explicitly set (noise::resolved_sampler).
  [[deprecated("set sampler.gauss_method (noise/sampler_policy.hpp)")]]
  std::optional<GaussianSampler::Method> gauss_method{};
};

/// Gate-level ring oscillator producing periods as sums of noisy stage
/// delays.
class GateChainOscillator {
 public:
  explicit GateChainOscillator(const GateChainConfig& config);

  /// Next full period: sum of 2*n_stages noisy stage delays.
  PeriodSample next_period();

  /// Batched fast path: fills `out` with the next out.size() periods,
  /// bit-identical to repeated next_period() calls. Thermal draws come
  /// from the shared stream in transition order; each stage's flicker
  /// samples (two per period — the rising and falling traversal) come
  /// from that stage's own bank in one FilterBankFlicker::fill block.
  void next_periods(std::span<PeriodSample> out);

  /// Nominal frequency 1/(2*N*t_stage).
  [[nodiscard]] double f0() const noexcept { return f0_; }

  /// Theoretical per-period thermal jitter variance: 2N * sigma_stage^2.
  [[nodiscard]] double period_thermal_variance() const;

  /// Equivalent phase-domain configuration (for cross-validation against
  /// RingOscillator): b_th = Var(J_th) * f0^3.
  [[nodiscard]] RingOscillatorConfig equivalent_phase_config() const;

  [[nodiscard]] const GateChainConfig& config() const noexcept {
    return config_;
  }

 private:
  GateChainConfig config_;
  double f0_;
  GaussianSampler gauss_;
  /// One flicker process per stage (stage delays are physically driven by
  /// distinct devices).
  std::vector<noise::FilterBankFlicker> stage_flicker_;
  std::vector<double> scratch_;  ///< next_periods block staging
};

}  // namespace ptrng::oscillator
