// The measurement topology of the paper (Figs. 4 and 6): two nominally
// identical, independently noisy ring oscillators. Provides both the
// ground-truth relative jitter process (oracle, Eq. 3/4) and streaming
// access to the two edge sequences for the counter circuit (Eq. 12).
//
// The RELATIVE jitter of two independent oscillators carries the sum of
// their phase PSDs, so the pair's effective coefficients are
// b_th = b_th,1 + b_th,2 and b_fl = b_fl,1 + b_fl,2. paper_pair() is
// calibrated so those sums reproduce the paper's fitted values.
#pragma once

#include <cstdint>
#include <vector>

#include "oscillator/ring_oscillator.hpp"

namespace ptrng::oscillator {

/// Two independent simulated rings plus pair-level conveniences.
class OscillatorPair {
 public:
  OscillatorPair(const RingOscillatorConfig& osc1_config,
                 const RingOscillatorConfig& osc2_config);

  [[nodiscard]] RingOscillator& osc1() noexcept { return osc1_; }
  [[nodiscard]] RingOscillator& osc2() noexcept { return osc2_; }

  /// Ground-truth relative period-jitter series J(t_i) = J1_i - J2_i
  /// (oracle access the paper's theory reasons about; hardware cannot
  /// observe this directly).
  [[nodiscard]] std::vector<double> relative_jitter(std::size_t n);

  /// Ground-truth relative time-error series x_i = -sum_{k<i} J_k [s]
  /// (phase of osc1 relative to osc2 in time units), length n+1 with
  /// x_0 = 0.
  [[nodiscard]] std::vector<double> relative_time_error(std::size_t n);

  /// The analytic pair-level phase PSD (coefficient sums).
  [[nodiscard]] phase_noise::PhasePsd pair_phase_psd() const;

 private:
  RingOscillator osc1_;
  RingOscillator osc2_;
};

/// The paper's experimental setup (Sec. III-E / IV-B): f0 = 103 MHz and
/// pair-level fitted coefficients b_th = 276.04 Hz,
/// b_fl = 1.9156e6 Hz^2 (derived from f0^2 sigma^2_Nth = 5.36e-6 N and
/// r_N = 5354/(5354+N)); split evenly between the two rings.
/// `mismatch` is the fractional frequency difference between the rings
/// (0.3% default — "identical" FPGA rings always differ slightly).
[[nodiscard]] OscillatorPair paper_pair(std::uint64_t seed = 0xda7e2014ULL,
                                        double mismatch = 3e-3);

/// Single-ring config carrying half of the paper's pair-level noise.
[[nodiscard]] RingOscillatorConfig paper_single_config(
    std::uint64_t seed = 0xda7e2014ULL);

/// Paper-level constants (pair-level, as fitted in Fig. 7 / Sec. IV-B).
namespace paper {
inline constexpr double f0 = 103e6;           ///< [Hz]
inline constexpr double b_th = 276.04;        ///< [Hz], two-sided
inline constexpr double b_fl = 1.9156e6;      ///< [Hz^2], two-sided
inline constexpr double rn_constant = 5354.0; ///< r_N = C/(C+N)
inline constexpr double sigma_th_ps = 15.89;  ///< thermal jitter [ps]
inline constexpr double jitter_ratio = 1.6e-3;  ///< sigma/T0
}  // namespace paper

}  // namespace ptrng::oscillator
