#include "oscillator/gate_chain.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ptrng::oscillator {

GateChainOscillator::GateChainOscillator(const GateChainConfig& config)
    : config_(config), gauss_(config.seed) {
  PTRNG_EXPECTS(config.n_stages >= 3);
  PTRNG_EXPECTS(config.n_stages % 2 == 1);
  PTRNG_EXPECTS(config.stage_delay > 0.0);
  PTRNG_EXPECTS(config.sigma_stage >= 0.0);
  PTRNG_EXPECTS(config.flicker_amplitude >= 0.0);

  f0_ = 1.0 / (2.0 * static_cast<double>(config.n_stages) *
               config.stage_delay);

  if (config.flicker_amplitude > 0.0) {
    // Stage transitions occur at rate 2*N*f0 = 1/stage_delay.
    const double fs = 1.0 / config.stage_delay;
    stage_flicker_.reserve(config.n_stages);
    for (std::size_t k = 0; k < config.n_stages; ++k) {
      noise::FilterBankFlicker::Config fb;
      fb.amplitude = config.flicker_amplitude;
      fb.fs = fs;
      fb.f_min = config.flicker_floor_hz;
      fb.f_max = fs / 4.0;
      fb.seed = config.seed + 0x1111ULL * (k + 1);
      stage_flicker_.emplace_back(fb);
    }
  }
}

PeriodSample GateChainOscillator::next_period() {
  PeriodSample s;
  const std::size_t transitions = 2 * config_.n_stages;
  double total = 0.0;
  double thermal = 0.0;
  double flicker = 0.0;
  for (std::size_t t = 0; t < transitions; ++t) {
    const double th = config_.sigma_stage * gauss_();
    double fl = 0.0;
    if (!stage_flicker_.empty())
      fl = stage_flicker_[t % config_.n_stages].next();
    thermal += th;
    flicker += fl;
    total += config_.stage_delay + th + fl;
  }
  s.period = total;
  s.thermal = thermal;
  s.flicker = flicker;
  return s;
}

double GateChainOscillator::period_thermal_variance() const {
  return 2.0 * static_cast<double>(config_.n_stages) *
         config_.sigma_stage * config_.sigma_stage;
}

RingOscillatorConfig GateChainOscillator::equivalent_phase_config() const {
  RingOscillatorConfig cfg;
  cfg.f0 = f0_;
  cfg.b_th = period_thermal_variance() * f0_ * f0_ * f0_;
  // Flicker equivalence: per-period flicker is the sum over 2N stage
  // samples; at frequencies well below the stage rate its PSD is
  // (2N)^2/(2N) = 2N times one stage's per-stage-rate PSD expressed on the
  // period grid... kept 0 here; cross-validation uses measured fits.
  cfg.b_fl = 0.0;
  cfg.seed = config_.seed;
  return cfg;
}

}  // namespace ptrng::oscillator
