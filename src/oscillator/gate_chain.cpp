#include "oscillator/gate_chain.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ptrng::oscillator {

GateChainOscillator::GateChainOscillator(const GateChainConfig& config)
    : config_(config),
      gauss_(config.seed, noise::resolved_sampler(config).gauss_method) {
  PTRNG_EXPECTS(config.n_stages >= 3);
  PTRNG_EXPECTS(config.n_stages % 2 == 1);
  PTRNG_EXPECTS(config.stage_delay > 0.0);
  PTRNG_EXPECTS(config.sigma_stage >= 0.0);
  PTRNG_EXPECTS(config.flicker_amplitude >= 0.0);

  f0_ = 1.0 / (2.0 * static_cast<double>(config.n_stages) *
               config.stage_delay);

  if (config.flicker_amplitude > 0.0) {
    // Stage transitions occur at rate 2*N*f0 = 1/stage_delay.
    const double fs = 1.0 / config.stage_delay;
    stage_flicker_.reserve(config.n_stages);
    for (std::size_t k = 0; k < config.n_stages; ++k) {
      stage_flicker_.emplace_back(noise::flicker_band_config(
          config.flicker_amplitude, fs, config.flicker_floor_hz,
          config.seed + 0x1111ULL * (k + 1), 3,
          noise::resolved_sampler(config)));
    }
  }
}

PeriodSample GateChainOscillator::next_period() {
  PeriodSample s;
  const std::size_t transitions = 2 * config_.n_stages;
  double total = 0.0;
  double thermal = 0.0;
  double flicker = 0.0;
  for (std::size_t t = 0; t < transitions; ++t) {
    const double th = config_.sigma_stage * gauss_();
    double fl = 0.0;
    if (!stage_flicker_.empty())
      fl = stage_flicker_[t % config_.n_stages].next();
    thermal += th;
    flicker += fl;
    total += config_.stage_delay + th + fl;
  }
  s.period = total;
  s.thermal = thermal;
  s.flicker = flicker;
  return s;
}

void GateChainOscillator::next_periods(std::span<PeriodSample> out) {
  const std::size_t n_stages = config_.n_stages;
  const std::size_t transitions = 2 * n_stages;
  const bool has_flicker = !stage_flicker_.empty();
  constexpr std::size_t kBlockPeriods = 1024;  // bounds the staging scratch

  for (std::size_t done = 0; done < out.size(); done += kBlockPeriods) {
    const std::size_t n = std::min(kBlockPeriods, out.size() - done);

    // Stage all noise draws for the block up front: thermal from the
    // shared stream in transition order, flicker as one fill() block per
    // stage (stage s is traversed twice per period, so its bank yields
    // 2*n samples in the same within-stage order as stepping).
    scratch_.resize(n * transitions + (has_flicker ? n * transitions : 0));
    double* const thermal = scratch_.data();
    double* const flicker = scratch_.data() + n * transitions;
    for (std::size_t j = 0; j < n * transitions; ++j)
      thermal[j] = config_.sigma_stage * gauss_();
    for (std::size_t s = 0; has_flicker && s < n_stages; ++s)
      stage_flicker_[s].fill({flicker + s * 2 * n, 2 * n});

    // Assemble each period with the exact accumulation order of
    // next_period(), so the batch is bit-identical to stepping.
    for (std::size_t i = 0; i < n; ++i) {
      double total = 0.0;
      double th_sum = 0.0;
      double fl_sum = 0.0;
      for (std::size_t t = 0; t < transitions; ++t) {
        const double th = thermal[i * transitions + t];
        const double fl =
            has_flicker
                ? flicker[(t % n_stages) * 2 * n + 2 * i + (t >= n_stages)]
                : 0.0;
        th_sum += th;
        fl_sum += fl;
        total += config_.stage_delay + th + fl;
      }
      out[done + i].period = total;
      out[done + i].thermal = th_sum;
      out[done + i].flicker = fl_sum;
    }
  }
}

double GateChainOscillator::period_thermal_variance() const {
  return 2.0 * static_cast<double>(config_.n_stages) *
         config_.sigma_stage * config_.sigma_stage;
}

RingOscillatorConfig GateChainOscillator::equivalent_phase_config() const {
  RingOscillatorConfig cfg;
  cfg.f0 = f0_;
  cfg.b_th = period_thermal_variance() * f0_ * f0_ * f0_;
  // Flicker equivalence: per-period flicker is the sum over 2N stage
  // samples; at frequencies well below the stage rate its PSD is
  // (2N)^2/(2N) = 2N times one stage's per-stage-rate PSD expressed on the
  // period grid... kept 0 here; cross-validation uses measured fits.
  cfg.b_fl = 0.0;
  cfg.seed = config_.seed;
  cfg.sampler = noise::resolved_sampler(config_);
  return cfg;
}

}  // namespace ptrng::oscillator
