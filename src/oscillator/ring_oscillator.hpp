// Phase-domain ring-oscillator simulator.
//
// The oscillator is simulated in the period domain: the i-th period is
//
//   T_i = 1/f_actual + J_th,i + J_fl,i
//
// where J_th is iid Gaussian (thermal) and J_fl is a 1/f-correlated
// sequence (flicker). Calibration to the paper's phase PSD
// S_phi = b_th/f^2 + b_fl/f^3 (two-sided) uses the cumulative-sum identity
// S_phi(f) ~ S_J(f) * f0^4/f^2 for f << f0 (docs/ARCHITECTURE.md §3):
//
//   thermal:  Var(J_th) = b_th / f0^3
//   flicker:  S_Jfl(f)  = (b_fl / f0^4) / f   (two-sided)
//
// Ground-truth jitter components are exposed so measurement code can be
// validated against an oracle that hardware never provides.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "noise/filter_bank.hpp"
#include "phase_noise/phase_psd.hpp"

namespace ptrng::oscillator {

/// One simulated oscillator period with its noise decomposition.
struct PeriodSample {
  double period = 0.0;   ///< T_i [s]
  double thermal = 0.0;  ///< J_th,i [s]
  double flicker = 0.0;  ///< J_fl,i [s]
  /// Total period jitter J_i = T_i - nominal (excludes deterministic
  /// modulation).
  [[nodiscard]] double jitter() const noexcept { return thermal + flicker; }
};

/// A pair of consecutive rising-edge times bracketing a sampling instant:
/// prev <= t < next. The value type of the bulk-edge sampling API below.
struct EdgeBracket {
  double prev = 0.0;  ///< last edge at or before the instant [s]
  double next = 0.0;  ///< first edge after the instant [s]

  /// Fractional phase of the instant inside the bracket, in [0, 1).
  [[nodiscard]] double fractional_phase(double t) const noexcept {
    return (t - prev) / (next - prev);
  }
};

/// Configuration of a simulated ring oscillator.
/// (Suppression covers the struct definition only — implicit-ctor NSDMI
/// use of the deprecated alias; callsite writes still warn.)
PTRNG_SUPPRESS_DEPRECATED_BEGIN
struct RingOscillatorConfig {
  double f0 = 103e6;      ///< nominal frequency [Hz] (paper: 103 MHz)
  double b_th = 138.02;   ///< two-sided thermal phase coefficient [Hz]
  double b_fl = 9.578e5;  ///< two-sided flicker phase coefficient [Hz^2]
  /// Lower edge of the flicker band as a fraction of f0 (the 1/f shaping
  /// holds above f0 * flicker_floor_ratio; below it the PSD flattens,
  /// keeping the process stationary).
  double flicker_floor_ratio = 1e-7;
  unsigned flicker_stages_per_decade = 3;
  /// Static frequency offset (mismatch between "identical" rings),
  /// fractional: f_actual = f0 * (1 + mismatch).
  double mismatch = 0.0;
  std::uint64_t seed = 0x05c111a701ULL;
  /// Sampler policy for the thermal draws and every flicker stage
  /// (docs/ARCHITECTURE.md §5 "Sampler policy"); Polar reproduces the
  /// pre-PR-5 realized period streams bit-for-bit.
  noise::SamplerPolicy sampler{};
  /// Pre-PR-7 alias of sampler.gauss_method; wins over `sampler` when
  /// explicitly set (noise::resolved_sampler).
  [[deprecated("set sampler.gauss_method (noise/sampler_policy.hpp)")]]
  std::optional<GaussianSampler::Method> gauss_method{};

  /// The analytic phase PSD this configuration realizes.
  [[nodiscard]] phase_noise::PhasePsd phase_psd() const {
    return {b_th, b_fl, f0};
  }
};
PTRNG_SUPPRESS_DEPRECATED_END

/// Streaming phase-domain ring oscillator.
class RingOscillator {
 public:
  explicit RingOscillator(const RingOscillatorConfig& config);

  /// Generates the next period (with ground-truth decomposition).
  PeriodSample next_period();

  /// Batched fast path: fills `out` with the next out.size() periods,
  /// bit-identical to out.size() next_period() calls (the thermal draws
  /// come from the same stream in the same order and the flicker block
  /// rides FilterBankFlicker::fill, which is itself bit-identical to
  /// stepping). Falls back to stepping when a modulation hook is
  /// installed (the hook must see every edge time).
  void next_periods(std::span<PeriodSample> out);

  /// Batched edge realization for boundary-resolution consumers (the
  /// differential counter): appends out.size() periods and writes the
  /// absolute rising-edge time after each one into out — bit-identical
  /// to out.size() next_period() calls reading edge_time() after each
  /// (same per-edge compensated accumulation, same stream consumption
  /// as next_periods). Falls back to stepping when a modulation hook is
  /// installed.
  void next_edges(std::span<double> out);

  /// Fast path: advances `k` periods in O(flicker stages) time — the
  /// thermal sum is one Gaussian draw, the flicker sum comes from the
  /// filter bank's exact block advance. Statistically indistinguishable
  /// from k next_period() calls for every downstream observable that only
  /// depends on edge times at the block boundaries. Falls back to
  /// stepping when a modulation hook is installed (the hook must see
  /// every period) or k is small.
  void advance_periods(std::uint64_t k);

  /// Absolute time of the most recently produced rising edge [s].
  /// Accumulated with compensated summation.
  [[nodiscard]] double edge_time() const noexcept { return edge_time_.value(); }

  /// Bulk-edge API for batched sampling: advances this oscillator until
  /// its edge bracket contains `t_target` and returns that bracket.
  /// `bracket` is the caller's current bracket (bracket.next must be the
  /// most recent realized edge, i.e. edge_time()). Far from the target it
  /// jumps in O(1) blocks via advance_periods sized to 90% of the nominal
  /// gap — the 10% margin dwarfs the jitter spread by orders of
  /// magnitude, so overshoot has negligible probability — and the final
  /// approach steps period by period to realize the bracketing edges.
  /// Already-bracketed targets (t_target < bracket.next) return the input
  /// unchanged, so per-bit resampling costs nothing extra.
  [[nodiscard]] EdgeBracket advance_to_block(double t_target,
                                             EdgeBracket bracket);

  /// Number of periods generated so far.
  [[nodiscard]] std::uint64_t cycle_count() const noexcept { return cycles_; }

  /// Deterministic fractional-frequency modulation hook (used by the
  /// attack models): df/f = modulation(t). Pass nullptr to clear.
  void set_modulation(std::function<double(double)> modulation);

  /// Thermal per-period jitter stddev realized by this instance [s].
  [[nodiscard]] double sigma_thermal() const noexcept { return sigma_th_; }

  /// Mean period including mismatch [s].
  [[nodiscard]] double nominal_period() const noexcept { return t_nom_; }

  [[nodiscard]] const RingOscillatorConfig& config() const noexcept {
    return config_;
  }

 private:
  RingOscillatorConfig config_;
  double t_nom_;
  double sigma_th_;
  GaussianSampler gauss_;
  std::optional<noise::FilterBankFlicker> flicker_;  ///< absent if b_fl == 0
  std::function<double(double)> modulation_;
  KahanSum edge_time_;
  std::uint64_t cycles_ = 0;
  std::vector<double> flicker_scratch_;  ///< next_periods block staging
  std::vector<double> thermal_scratch_;  ///< batched thermal draw staging
};

}  // namespace ptrng::oscillator
