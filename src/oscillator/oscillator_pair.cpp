#include "oscillator/oscillator_pair.hpp"

#include <algorithm>
#include <span>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"

namespace ptrng::oscillator {

namespace {

/// Streams out.size() ground-truth jitter samples of one ring through the
/// batched period path, block by block.
void jitter_into(RingOscillator& osc, std::span<double> out) {
  constexpr std::size_t kBlock = 8192;
  std::vector<PeriodSample> block(std::min(out.size(), kBlock));
  for (std::size_t done = 0; done < out.size(); done += kBlock) {
    const std::size_t n = std::min(kBlock, out.size() - done);
    osc.next_periods({block.data(), n});
    for (std::size_t i = 0; i < n; ++i) out[done + i] = block[i].jitter();
  }
}

}  // namespace

OscillatorPair::OscillatorPair(const RingOscillatorConfig& osc1_config,
                               const RingOscillatorConfig& osc2_config)
    : osc1_(osc1_config), osc2_(osc2_config) {}

std::vector<double> OscillatorPair::relative_jitter(std::size_t n) {
  PTRNG_EXPECTS(n >= 1);
  std::vector<double> out(n), other(n);
  // One ring per task (§5 leaf fan-out): the rings share no state and
  // each task advances only its own oscillator, so the result is
  // identical for any PTRNG_THREADS — including width 1, where both
  // rings run inline on the caller.
  parallel_for(0, 2, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      if (r == 0)
        jitter_into(osc1_, out);
      else
        jitter_into(osc2_, other);
    }
  });
  for (std::size_t i = 0; i < n; ++i) out[i] -= other[i];
  return out;
}

std::vector<double> OscillatorPair::relative_time_error(std::size_t n) {
  PTRNG_EXPECTS(n >= 1);
  const auto j = relative_jitter(n);
  std::vector<double> x(n + 1);
  x[0] = 0.0;
  KahanSum acc;
  for (std::size_t i = 0; i < n; ++i) {
    acc.add(-j[i]);
    x[i + 1] = acc.value();
  }
  return x;
}

phase_noise::PhasePsd OscillatorPair::pair_phase_psd() const {
  const auto& c1 = osc1_.config();
  const auto& c2 = osc2_.config();
  return {c1.b_th + c2.b_th, c1.b_fl + c2.b_fl, c1.f0};
}

RingOscillatorConfig paper_single_config(std::uint64_t seed) {
  RingOscillatorConfig cfg;
  cfg.f0 = paper::f0;
  cfg.b_th = paper::b_th / 2.0;
  cfg.b_fl = paper::b_fl / 2.0;
  cfg.seed = seed;
  return cfg;
}

OscillatorPair paper_pair(std::uint64_t seed, double mismatch) {
  auto c1 = paper_single_config(seed);
  auto c2 = paper_single_config(seed ^ 0x9e3779b97f4a7c15ULL);
  c1.mismatch = +mismatch / 2.0;
  c2.mismatch = -mismatch / 2.0;
  return {c1, c2};
}

}  // namespace ptrng::oscillator
