// CMOS inverter model: the delay cell of the classical ring oscillator
// (paper Fig. 4). Provides the quantities the Hajimiri conversion needs:
// switching current, load capacitance, per-stage delay, and the aggregated
// current-noise PSD of the devices that are active during an edge.
#pragma once

#include "noise/psd_model.hpp"
#include "transistor/mosfet.hpp"
#include "transistor/technology.hpp"

namespace ptrng::transistor {

/// A CMOS inverter built from a technology node, driving a load C_L.
class Inverter {
 public:
  /// `fanout`: how many identical gate inputs the stage drives (the load is
  /// fanout * (nmos+pmos gate capacitance) + wiring estimated as 30%).
  Inverter(const TechnologyNode& node, double fanout = 1.0);

  /// Average switching (saturation) current of the pull-down NMOS at full
  /// gate overdrive, I_D = 0.5*mu*Cox*(W/L)*(VDD-VT)^2.
  [[nodiscard]] double switching_current() const;

  /// Total load capacitance C_L [F].
  [[nodiscard]] double load_capacitance() const noexcept { return cl_; }

  /// Maximum charge swing q_max = C_L * VDD — Hajimiri's normalization.
  [[nodiscard]] double q_max() const;

  /// Propagation delay of one edge: t_d = C_L*VDD / (2*I_D).
  [[nodiscard]] double propagation_delay() const;

  /// Combined one-sided current-noise PSD of the two devices
  /// (thermal white term + flicker 1/f term), at switching bias (Eq. 1).
  [[nodiscard]] noise::PowerLawPsd current_noise_psd() const;

  [[nodiscard]] const Mosfet& nmos() const noexcept { return nmos_; }
  [[nodiscard]] const Mosfet& pmos() const noexcept { return pmos_; }
  [[nodiscard]] double vdd() const noexcept { return vdd_; }

 private:
  Mosfet nmos_;
  Mosfet pmos_;
  double vdd_;
  double vth_;
  double cl_;
};

}  // namespace ptrng::transistor
