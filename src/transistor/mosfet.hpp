// MOSFET small-signal and noise model (paper Sec. III-A).
//
// The two parasitic phenomena the paper considers are modeled as a noise
// current source i_ds between drain and source with PSD
//
//   thermal:  S_ids,th(f) = (8/3) * k * T * gm            [12]
//   flicker:  S_ids,fl(f) = alpha * k * T * I_D^2 / (W * L^2 * f)   [13]
//
// and, the phenomena being independent, S_ids = S_ids,th + S_ids,fl
// (Eq. 1). Circuit-literature convention: these quoted PSDs are ONE-SIDED;
// use PowerLawPsd::as() for explicit conversions.
#pragma once

#include "noise/psd_model.hpp"

namespace ptrng::transistor {

/// Device geometry and process parameters of a single MOSFET (SI units).
struct MosfetParams {
  double width = 1e-6;       ///< W, gate width [m]
  double length = 100e-9;    ///< L, channel length [m]
  double mobility = 0.04;    ///< mu * Cox carrier term folded below
  double cox = 8e-3;         ///< oxide capacitance per area [F/m^2]
  double vth = 0.4;          ///< threshold voltage [V]
  double alpha_flicker = 2e-24;  ///< crystallography constant alpha [m^2]
  double temperature = 300.0;    ///< T [K]
};

/// A biased MOSFET exposing the paper's two noise PSDs.
class Mosfet {
 public:
  explicit Mosfet(const MosfetParams& params);

  /// Square-law saturation drain current at gate overdrive v_ov [V].
  [[nodiscard]] double drain_current(double v_ov) const;

  /// Square-law transconductance gm = dI_D/dV_GS at drain current i_d [A].
  [[nodiscard]] double transconductance(double i_d) const;

  /// One-sided thermal-noise current PSD (8/3)kT*gm [A^2/Hz].
  [[nodiscard]] double thermal_psd(double gm) const;

  /// One-sided flicker-noise current PSD alpha*k*T*I_D^2/(W*L^2*f)
  /// evaluated at frequency f [A^2/Hz].
  [[nodiscard]] double flicker_psd(double i_d, double f) const;

  /// Coefficient a_fl of the flicker PSD a_fl/f (one-sided).
  [[nodiscard]] double flicker_coefficient(double i_d) const;

  /// Corner frequency where thermal and flicker PSDs are equal.
  [[nodiscard]] double corner_frequency(double i_d) const;

  /// Full S_ids as a power-law model (Eq. 1), one-sided, at bias i_d.
  [[nodiscard]] noise::PowerLawPsd current_noise_psd(double i_d) const;

  /// Gate capacitance Cox*W*L [F] — the load one such device presents.
  [[nodiscard]] double gate_capacitance() const;

  [[nodiscard]] const MosfetParams& params() const noexcept { return params_; }

 private:
  MosfetParams params_;
};

}  // namespace ptrng::transistor
