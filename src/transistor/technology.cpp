#include "transistor/technology.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace ptrng::transistor {

MosfetParams TechnologyNode::nmos(double w_over_l) const {
  PTRNG_EXPECTS(w_over_l > 0.0);
  MosfetParams p;
  p.width = w_over_l * feature;
  p.length = feature;
  p.mobility = mobility_n;
  p.cox = cox;
  p.vth = vth;
  p.alpha_flicker = alpha_flicker;
  return p;
}

MosfetParams TechnologyNode::pmos(double w_over_l) const {
  PTRNG_EXPECTS(w_over_l > 0.0);
  MosfetParams p;
  p.width = w_over_l * feature;
  p.length = feature;
  p.mobility = mobility_p;
  p.cox = cox;
  p.vth = vth;
  p.alpha_flicker = alpha_flicker;
  return p;
}

const std::vector<TechnologyNode>& technology_nodes() {
  // Representative textbook values. Cox rises as oxide thins; mobility
  // degrades with field; alpha_flicker worsens with high-k / nitrided
  // oxides — together these drive the flicker/thermal ratio up as the
  // node shrinks, which is the effect the paper's conclusion predicts.
  // alpha_flicker is the paper's empirical crystallography constant in
  // S_ids,fl = alpha*k*T*I_D^2/(W*L^2*f); the values are calibrated so
  // minimum-size devices get flicker corner frequencies in the 0.1-10 MHz
  // range (rising as nodes shrink), matching published corner data.
  static const std::vector<TechnologyNode> nodes = {
      {"350nm", 350e-9, 3.3, 0.60, 4.6e-3, 0.040, 0.016, 2.0e-11},
      {"180nm", 180e-9, 1.8, 0.45, 8.5e-3, 0.035, 0.014, 8.0e-11},
      {"130nm", 130e-9, 1.5, 0.40, 1.1e-2, 0.032, 0.013, 1.2e-10},
      {"90nm", 90e-9, 1.2, 0.35, 1.4e-2, 0.030, 0.012, 1.8e-10},
      {"65nm", 65e-9, 1.1, 0.32, 1.7e-2, 0.028, 0.011, 2.6e-10},
      {"40nm", 40e-9, 1.0, 0.30, 2.1e-2, 0.026, 0.010, 3.6e-10},
      {"28nm", 28e-9, 0.9, 0.28, 2.5e-2, 0.024, 0.009, 5.0e-10},
  };
  return nodes;
}

const TechnologyNode& technology_node(const std::string& name) {
  for (const auto& node : technology_nodes())
    if (node.name == name) return node;
  throw DataError("unknown technology node: " + name);
}

double OperatingCorner::thermal_noise_scale() const noexcept {
  return (temp_c + 273.15) / kNominalKelvin;
}

double OperatingCorner::speed_scale() const noexcept {
  const double t_k = temp_c + 273.15;
  return vdd_scale * std::pow(kNominalKelvin / t_k, 0.8);
}

const std::vector<OperatingCorner>& standard_corners() {
  static const std::vector<OperatingCorner> corners = {
      {"tt", 27.0, 1.0},
      {"hot_slow", 85.0, 0.9},
      {"cold_fast", -40.0, 1.1},
  };
  return corners;
}

const OperatingCorner& standard_corner(const std::string& name) {
  for (const auto& corner : standard_corners())
    if (corner.name == name) return corner;
  throw DataError("unknown operating corner: " + name);
}

}  // namespace ptrng::transistor
