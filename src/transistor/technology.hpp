// Representative CMOS technology nodes. The paper's conclusion hinges on
// technology scaling: flicker PSD scales as 1/(W*L^2), so shrinking L
// makes the autocorrelated noise dominate and pushes the independence
// threshold N* down. These presets provide a plausible scaling trajectory
// for that experiment (bench_tech_scaling); absolute values are
// representative textbook numbers, not foundry data.
#pragma once

#include <string>
#include <vector>

#include "transistor/mosfet.hpp"

namespace ptrng::transistor {

/// One technology generation with the parameters the noise model needs.
struct TechnologyNode {
  std::string name;       ///< e.g. "180nm"
  double feature = 0.0;   ///< minimum channel length [m]
  double vdd = 0.0;       ///< nominal supply [V]
  double vth = 0.0;       ///< threshold [V]
  double cox = 0.0;       ///< oxide capacitance [F/m^2]
  double mobility_n = 0.0;  ///< NMOS effective mobility [m^2/Vs]
  double mobility_p = 0.0;  ///< PMOS effective mobility [m^2/Vs]
  double alpha_flicker = 0.0;  ///< flicker crystallography constant [m^2]

  /// NMOS device at minimum length with the given width multiple
  /// (width = w_over_l * feature).
  [[nodiscard]] MosfetParams nmos(double w_over_l = 4.0) const;
  /// PMOS device (usually ~2x wider to balance drive strength).
  [[nodiscard]] MosfetParams pmos(double w_over_l = 8.0) const;
};

/// The built-in scaling trajectory, largest node first:
/// 350, 180, 130, 90, 65, 40, 28 nm.
[[nodiscard]] const std::vector<TechnologyNode>& technology_nodes();

/// Lookup by name; throws DataError when unknown.
[[nodiscard]] const TechnologyNode& technology_node(const std::string& name);

/// One temperature/supply operating point of a deployed device — the
/// corner axis of the fleet campaign grid (and anything else that wants
/// to derate a nominal device). Like the node presets above, the scaling
/// laws are representative first-order physics, not foundry data:
///  * thermal noise power is proportional to absolute temperature
///    (Johnson-Nyquist), so the thermal phase-noise coefficient scales
///    by T/T_nominal;
///  * gate delay shortens with overdrive and lengthens as mobility
///    degrades with temperature (mu ~ T^-1.5 dominates near nominal
///    overdrive), so frequency scales by vdd_scale * (T0/T)^0.8.
struct OperatingCorner {
  std::string name;        ///< e.g. "tt", "hot_slow", "cold_fast"
  double temp_c = 27.0;    ///< junction temperature [degC]
  double vdd_scale = 1.0;  ///< supply relative to nominal (0.9 = -10%)

  static constexpr double kNominalKelvin = 300.15;  ///< 27 degC

  /// Multiplier on the thermal phase-noise coefficient (b_th, or a
  /// per-stage thermal delay VARIANCE): T_K / 300.15 K.
  [[nodiscard]] double thermal_noise_scale() const noexcept;
  /// Multiplier on oscillation frequency (divides delays):
  /// vdd_scale * (300.15 K / T_K)^0.8.
  [[nodiscard]] double speed_scale() const noexcept;
};

/// The built-in corner set: "tt" (27 C, nominal VDD), "hot_slow"
/// (85 C, -10% VDD), "cold_fast" (-40 C, +10% VDD).
[[nodiscard]] const std::vector<OperatingCorner>& standard_corners();

/// Lookup by name; throws DataError when unknown.
[[nodiscard]] const OperatingCorner& standard_corner(const std::string& name);

}  // namespace ptrng::transistor
