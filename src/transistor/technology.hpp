// Representative CMOS technology nodes. The paper's conclusion hinges on
// technology scaling: flicker PSD scales as 1/(W*L^2), so shrinking L
// makes the autocorrelated noise dominate and pushes the independence
// threshold N* down. These presets provide a plausible scaling trajectory
// for that experiment (bench_tech_scaling); absolute values are
// representative textbook numbers, not foundry data.
#pragma once

#include <string>
#include <vector>

#include "transistor/mosfet.hpp"

namespace ptrng::transistor {

/// One technology generation with the parameters the noise model needs.
struct TechnologyNode {
  std::string name;       ///< e.g. "180nm"
  double feature = 0.0;   ///< minimum channel length [m]
  double vdd = 0.0;       ///< nominal supply [V]
  double vth = 0.0;       ///< threshold [V]
  double cox = 0.0;       ///< oxide capacitance [F/m^2]
  double mobility_n = 0.0;  ///< NMOS effective mobility [m^2/Vs]
  double mobility_p = 0.0;  ///< PMOS effective mobility [m^2/Vs]
  double alpha_flicker = 0.0;  ///< flicker crystallography constant [m^2]

  /// NMOS device at minimum length with the given width multiple
  /// (width = w_over_l * feature).
  [[nodiscard]] MosfetParams nmos(double w_over_l = 4.0) const;
  /// PMOS device (usually ~2x wider to balance drive strength).
  [[nodiscard]] MosfetParams pmos(double w_over_l = 8.0) const;
};

/// The built-in scaling trajectory, largest node first:
/// 350, 180, 130, 90, 65, 40, 28 nm.
[[nodiscard]] const std::vector<TechnologyNode>& technology_nodes();

/// Lookup by name; throws DataError when unknown.
[[nodiscard]] const TechnologyNode& technology_node(const std::string& name);

}  // namespace ptrng::transistor
