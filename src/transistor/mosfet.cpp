#include "transistor/mosfet.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::transistor {

Mosfet::Mosfet(const MosfetParams& params) : params_(params) {
  PTRNG_EXPECTS(params.width > 0.0);
  PTRNG_EXPECTS(params.length > 0.0);
  PTRNG_EXPECTS(params.mobility > 0.0);
  PTRNG_EXPECTS(params.cox > 0.0);
  PTRNG_EXPECTS(params.alpha_flicker > 0.0);
  PTRNG_EXPECTS(params.temperature > 0.0);
}

double Mosfet::drain_current(double v_ov) const {
  PTRNG_EXPECTS(v_ov >= 0.0);
  const double beta =
      params_.mobility * params_.cox * params_.width / params_.length;
  return 0.5 * beta * v_ov * v_ov;
}

double Mosfet::transconductance(double i_d) const {
  PTRNG_EXPECTS(i_d >= 0.0);
  const double beta =
      params_.mobility * params_.cox * params_.width / params_.length;
  return std::sqrt(2.0 * beta * i_d);
}

double Mosfet::thermal_psd(double gm) const {
  PTRNG_EXPECTS(gm >= 0.0);
  return (8.0 / 3.0) * constants::k_boltzmann * params_.temperature * gm;
}

double Mosfet::flicker_coefficient(double i_d) const {
  PTRNG_EXPECTS(i_d >= 0.0);
  return params_.alpha_flicker * constants::k_boltzmann *
         params_.temperature * i_d * i_d /
         (params_.width * params_.length * params_.length);
}

double Mosfet::flicker_psd(double i_d, double f) const {
  PTRNG_EXPECTS(f > 0.0);
  return flicker_coefficient(i_d) / f;
}

double Mosfet::corner_frequency(double i_d) const {
  const double th = thermal_psd(transconductance(i_d));
  PTRNG_EXPECTS(th > 0.0);
  return flicker_coefficient(i_d) / th;
}

noise::PowerLawPsd Mosfet::current_noise_psd(double i_d) const {
  noise::PowerLawPsd psd(noise::Sidedness::one_sided);
  psd.add_term(thermal_psd(transconductance(i_d)), 0.0, "thermal");
  psd.add_term(flicker_coefficient(i_d), -1.0, "flicker");
  return psd;
}

double Mosfet::gate_capacitance() const {
  return params_.cox * params_.width * params_.length;
}

}  // namespace ptrng::transistor
