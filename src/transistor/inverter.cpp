#include "transistor/inverter.hpp"

#include "common/contracts.hpp"

namespace ptrng::transistor {

Inverter::Inverter(const TechnologyNode& node, double fanout)
    : nmos_(node.nmos()), pmos_(node.pmos()), vdd_(node.vdd), vth_(node.vth) {
  PTRNG_EXPECTS(fanout >= 0.5);
  const double gate_caps =
      nmos_.gate_capacitance() + pmos_.gate_capacitance();
  // 30% wiring overhead on top of the driven gates.
  cl_ = 1.3 * fanout * gate_caps;
}

double Inverter::switching_current() const {
  const double v_ov = vdd_ - vth_;
  PTRNG_EXPECTS(v_ov > 0.0);
  return nmos_.drain_current(v_ov);
}

double Inverter::q_max() const { return cl_ * vdd_; }

double Inverter::propagation_delay() const {
  return cl_ * vdd_ / (2.0 * switching_current());
}

noise::PowerLawPsd Inverter::current_noise_psd() const {
  const double i_d = switching_current();
  noise::PowerLawPsd psd(noise::Sidedness::one_sided);
  const double gm_n = nmos_.transconductance(i_d);
  const double gm_p = pmos_.transconductance(i_d);
  psd.add_term(nmos_.thermal_psd(gm_n) + pmos_.thermal_psd(gm_p), 0.0,
               "thermal");
  psd.add_term(nmos_.flicker_coefficient(i_d) + pmos_.flicker_coefficient(i_d),
               -1.0, "flicker");
  return psd;
}

}  // namespace ptrng::transistor
